(* Entry point: regenerate the paper's tables and figures.

   usage: bench/main.exe [all|e1|..|e10|b1|..|b6|smoke|bechamel] [--full]
                         [--backend sim|dram] [--flush sync|async]
                         [--flit on|off] [--strategy paper|nodirty|fewfence]
                         [--metrics FILE] [--trace FILE] [--trace-shift N]

   With no argument, runs every experiment at the quick scale.
   [--backend] picks the memory backend for volatile runs (default dram;
   persistent runs always use the simulated NVRAM device).
   [--flush] forces the device's write-back mode for every experiment
   that does not pin one itself (default async; b2 compares both).
   [--flit] turns destination-only persistence on or off globally
   (default on; b5 compares both regardless of this switch).
   [--strategy] picks the default commit-protocol strategy for every
   persistent run (default paper; b6 races all three regardless).
   [--metrics FILE] enables telemetry and writes a JSON report — the
   registry snapshot (per-phase times, latency histograms, epoch
   counters) plus one row per measured point — to FILE at the end.
   [--metrics-shift N] records only 1 in 2^N latency observations per
   site (default 0 = all), trading histogram population for
   near-disabled overhead on hot paths.
   [--trace FILE] turns the flight recorder on for the whole run and
   writes a Chrome trace-event / Perfetto JSON export to FILE at exit;
   [--trace-shift N] samples 1 in 2^N outermost op spans (default 4
   under --trace, so long benches don't churn the rings). *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full_scale = List.mem "--full" args in
  let trace_out : string option ref = ref None in
  let trace_shift = ref 4 in
  let rec strip = function
    | "--backend" :: b :: rest ->
        (match Nvram.Mem.backend_of_string b with
        | Some b -> Experiments_lib.Bench_env.default_volatile_backend := b
        | None ->
            Printf.eprintf "unknown backend %S (expected sim or dram)\n" b;
            exit 2);
        strip rest
    | "--flush" :: m :: rest ->
        (match Nvram.Config.flush_mode_of_string m with
        | Some m -> Experiments_lib.Bench_env.default_flush_mode := Some m
        | None ->
            Printf.eprintf "unknown flush mode %S (expected sync or async)\n"
              m;
            exit 2);
        strip rest
    | "--flit" :: m :: rest ->
        (match m with
        | "on" -> Nvram.Flit.set_enabled true
        | "off" -> Nvram.Flit.set_enabled false
        | _ ->
            Printf.eprintf "unknown flit mode %S (expected on or off)\n" m;
            exit 2);
        strip rest
    | "--strategy" :: s :: rest ->
        (match Nvram.Config.strategy_of_string s with
        | Some s -> Nvram.Config.set_default_strategy s
        | None ->
            Printf.eprintf
              "unknown strategy %S (expected paper, nodirty or fewfence)\n" s;
            exit 2);
        strip rest
    | "--metrics" :: path :: rest ->
        Experiments_lib.Report.out_path := Some path;
        strip rest
    | "--metrics-shift" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 0 -> Telemetry.set_sample_shift n
        | _ ->
            Printf.eprintf "bad --metrics-shift %S (expected an int >= 0)\n"
              n;
            exit 2);
        strip rest
    | "--trace" :: path :: rest ->
        trace_out := Some path;
        strip rest
    | "--trace-shift" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 0 -> trace_shift := n
        | _ ->
            Printf.eprintf "bad --trace-shift %S (expected an int >= 0)\n" n;
            exit 2);
        strip rest
    | "--full" :: rest -> strip rest
    | a :: rest -> a :: strip rest
    | [] -> []
  in
  let names = strip args in
  Option.iter
    (fun _ -> Flight.enable ~sample_shift:!trace_shift ())
    !trace_out;
  if Experiments_lib.Report.want () then begin
    Telemetry.enable ();
    (* Pre-create the histograms the report schema promises, so a run
       that never exercises some subsystem still exports them (empty). *)
    List.iter
      (fun n -> ignore (Telemetry.histogram n))
      [
        "pmwcas.attempt_ns"; "pmwcas.success_ns"; "nvram.clwb_stall_ns";
        "palloc.alloc_ns"; "skiplist.op_ns"; "bwtree.op_ns";
        "store.batch_size"; "store.queue_wait_ns"; "store.latency_ns";
      ];
    Telemetry.register_source ~kind:`Gauge "nvram.phase_ns" (fun () ->
        Nvram.Stats.phase_times_to_json ());
    Telemetry.register_source ~kind:`Counter "epoch" (fun () ->
        Epoch.counters_to_json (Epoch.counters ()));
    (* Named under the palloc group (beside palloc.alloc_ns) rather than
       as a bare "palloc" source, which would clobber the histogram. *)
    Telemetry.register_source ~kind:`Counter "palloc.counters" (fun () ->
        Palloc.counters_to_json (Palloc.counters ()));
    Telemetry.register_source ~kind:`Counter "store.counters" (fun () ->
        Store.counters_to_json ());
    Telemetry.register_source ~kind:`Counter "flit.counters" (fun () ->
        Nvram.Flit.counters_to_json ());
    Telemetry.register_source ~kind:`Counter "strategy.counters" (fun () ->
        Nvram.Strategy.counters_to_json ())
  end;
  let scale =
    if full_scale then Experiments_lib.Experiments.full else Experiments_lib.Experiments.quick
  in
  Printf.printf
    "PMwCAS reproduction benchmarks (%s scale, volatile backend: %s)\n\
     Single-core host: domains interleave; compare columns, not cores.\n"
    (if full_scale then "full" else "quick")
    (Nvram.Mem.backend_name !Experiments_lib.Bench_env.default_volatile_backend);
  (match names with
  | [] | [ "all" ] ->
      Experiments_lib.Experiments.run_all ~full_scale ();
      Experiments_lib.Bechamel_suite.run ()
  | names ->
      List.iter
        (fun n ->
          if n = "bechamel" || n = "e11" then Experiments_lib.Bechamel_suite.run ()
          else Experiments_lib.Experiments.by_name n scale)
        names);
  Experiments_lib.Report.write
    ~scale:(if full_scale then "full" else "quick")
    ~backend:
      (Nvram.Mem.backend_name
         !Experiments_lib.Bench_env.default_volatile_backend);
  match !trace_out with
  | None -> ()
  | Some path ->
      let snap = Flight.snapshot () in
      Flight.Perfetto.write_file path snap;
      Printf.printf "wrote trace to %s (%d events, %d help edges, run %s)\n%!"
        path
        (Flight.event_count snap)
        (Flight.Perfetto.help_edge_count snap)
        (Flight.run_id ())
