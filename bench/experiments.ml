(* The paper's evaluation, experiment by experiment (DESIGN.md E1..E10).
   Each function prints the table/series the corresponding figure reports.
   Quick mode keeps runtimes in seconds; [--full] widens sweeps. *)

module Mem = Nvram.Mem
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op
module Metrics = Pmwcas.Metrics
module Pm = Skiplist.Pm
module Cas = Skiplist.Cas_baseline
module Tree = Bwtree.Tree
module Dist = Workload.Distribution
module Mix = Workload.Mix
module Runner = Harness.Runner
module Table = Harness.Table

type scale = {
  seconds : float;
  threads : int list;
  mwcas_ranges : int list;  (** Data-array sizes: contention levels. *)
  index_keys : int;  (** Preloaded keys for the index experiments. *)
  recovery_inflight : int list;
}

let quick =
  {
    seconds = 0.4;
    threads = [ 1; 2; 4 ];
    mwcas_ranges = [ 64; 1024; 16384 ];
    index_keys = 10_000;
    recovery_inflight = [ 8; 64; 256 ];
  }

let full =
  {
    seconds = 2.0;
    threads = [ 1; 2; 4; 8 ];
    mwcas_ranges = [ 64; 1024; 16384; 262144 ];
    index_keys = 100_000;
    recovery_inflight = [ 8; 64; 512; 4096 ];
  }

let section title = Printf.printf "\n=== %s ===\n%!" title

(* ------------------------------------------------------------------ *)
(* Multi-word CAS microbenchmark thunks.                               *)

let mwcas_env ?persistent ?backend ?flush_delay ?flush_mode ?sharing ~threads
    ~range () =
  let env =
    Bench_env.make ?persistent ?backend ?flush_delay ?flush_mode ?sharing
      ~max_threads:threads
      ~heap_words:(1 lsl 12)
      ~map_words:8
      ~data_words:(max 64 range)
      ()
  in
  Bench_env.init_data env 0;
  env

(* One K-word PMwCAS over random distinct slots; bump each word by one.
   Failures under contention count as attempts, as in the paper. *)
let mwcas_thunk (env : Bench_env.t) ~nwords ~range tid =
  let h = Pool.register env.pool in
  let rng = Random.State.make [| 7919 * (tid + 1) |] in
  let idx = Array.make nwords 0 in
  fun () ->
    let rec pick i =
      if i = nwords then ()
      else begin
        let k = Random.State.int rng range in
        if Array.exists (fun x -> x = k) (Array.sub idx 0 i) then pick i
        else begin
          idx.(i) <- k;
          pick (i + 1)
        end
      end
    in
    pick 0;
    Array.sort compare idx;
    let d = Pool.alloc_desc h in
    Pool.with_epoch h (fun () ->
        Array.iter
          (fun k ->
            let a = env.data + k in
            let v = Op.read env.pool a in
            Pool.add_word d ~addr:a ~expected:v ~desired:(v + 1))
          idx;
        ignore (Op.execute d))

(* [label] additionally pushes a JSON row (and, with it, a throughput /
   flush-rate time series) into [Report] when [--metrics] is active. *)
let run_mwcas_point ?persistent ?backend ?flush_delay ?flush_mode ?sharing
    ?label ~threads ~range ~nwords ~seconds () =
  let env =
    mwcas_env ?persistent ?backend ?flush_delay ?flush_mode ?sharing ~threads
      ~range ()
  in
  let sampler =
    match label with
    | Some _ when Report.want () ->
        Some
          (Telemetry.Sampler.start
             [
               Telemetry.Sampler.counter "ops_per_s" (fun () ->
                   (Metrics.snapshot (Pool.metrics env.pool)).attempts);
               Telemetry.Sampler.counter "flushes_per_s" (fun () ->
                   (Nvram.Stats.snapshot (Mem.stats env.mem)).flushes);
             ])
    | _ -> None
  in
  let r =
    Runner.run_timed ~threads ~seconds ~prepare:(fun tid ->
        mwcas_thunk env ~nwords ~range tid)
  in
  let series = Option.map Telemetry.Sampler.stop sampler in
  let m = Metrics.snapshot (Pool.metrics env.pool) in
  Option.iter
    (fun label ->
      Report.add_row ~experiment:label
        ~params:
          [
            ("range", Report.V.Int range);
            ("threads", Report.V.Int threads);
            ("nwords", Report.V.Int nwords);
            ( "persistent",
              Report.V.Bool (Option.value persistent ~default:true) );
          ]
        ~result:r ~metrics:m
        ~stats:(Nvram.Stats.snapshot (Mem.stats env.mem))
        ?series ())
    label;
  (r, m, env)

(* E1: throughput vs threads under three contention levels, volatile
   MwCAS vs PMwCAS (same code, flushes elided vs real), plus PMwCAS with
   a modelled NVM write-back latency. *)
let e1 s =
  section
    "E1  PMwCAS microbenchmark: throughput vs threads and contention \
     (4-word ops)";
  let rows = ref [] in
  List.iter
    (fun range ->
      List.iter
        (fun threads ->
          let v, _, _ =
            run_mwcas_point ~persistent:false ~label:"e1.volatile" ~threads
              ~range ~nwords:4 ~seconds:s.seconds ()
          in
          let p, _, _ =
            run_mwcas_point ~persistent:true ~label:"e1.pmwcas" ~threads
              ~range ~nwords:4 ~seconds:s.seconds ()
          in
          let pf, _, _ =
            run_mwcas_point ~persistent:true ~flush_delay:60
              ~label:"e1.pmwcas_lat" ~threads ~range ~nwords:4
              ~seconds:s.seconds ()
          in
          rows :=
            [
              string_of_int range;
              string_of_int threads;
              Table.kops v.throughput;
              Table.kops p.throughput;
              Table.ratio p.throughput v.throughput;
              Table.kops pf.throughput;
            ]
            :: !rows)
        s.threads)
    s.mwcas_ranges;
  Table.print
    ~title:
      "throughput (Kops/s); overhead = PMwCAS vs volatile MwCAS, same code"
    ~header:
      [ "array"; "threads"; "volatile"; "pmwcas"; "overhead"; "pmwcas+lat" ]
    (List.rev !rows)

(* E2: effect of the number of words per descriptor. *)
let e2 s =
  section "E2  Words per PMwCAS descriptor (medium contention)";
  let threads = List.fold_left max 1 s.threads in
  let range = 4096 in
  let rows =
    List.map
      (fun nwords ->
        let v, _, _ =
          run_mwcas_point ~persistent:false ~label:"e2.volatile" ~threads
            ~range ~nwords ~seconds:s.seconds ()
        in
        let p, _, env =
          run_mwcas_point ~persistent:true ~label:"e2.pmwcas" ~threads ~range
            ~nwords ~seconds:s.seconds ()
        in
        let flushes_per_op =
          float_of_int (Bench_env.flush_count env)
          /. float_of_int (max 1 p.ops)
        in
        [
          string_of_int nwords;
          Table.kops v.throughput;
          Table.kops p.throughput;
          Table.ratio p.throughput v.throughput;
          Printf.sprintf "%.1f" flushes_per_op;
        ])
      [ 1; 2; 4; 8 ]
  in
  Table.print
    ~title:"throughput (Kops/s) and flushes per op vs descriptor width"
    ~header:[ "words"; "volatile"; "pmwcas"; "overhead"; "flush/op" ]
    rows

(* E3: cooperative behaviour — success and help rates vs contention. *)
let e3 s =
  section "E3  Help-along behaviour vs contention (4 threads, 4-word ops)";
  let threads = min 4 (List.fold_left max 1 s.threads) in
  let rows =
    List.map
      (fun range ->
        let r, m, _ =
          run_mwcas_point ~persistent:true ~label:"e3" ~threads ~range
            ~nwords:4 ~seconds:s.seconds ()
        in
        let per x = float_of_int x /. float_of_int (max 1 m.attempts) in
        [
          string_of_int range;
          string_of_int r.ops;
          Table.pct (per m.succeeded);
          Printf.sprintf "%.4f" (per m.desc_helps);
          Printf.sprintf "%.4f" (per m.rdcss_helps);
        ])
      s.mwcas_ranges
  in
  Table.print
    ~title:"smaller arrays = more contention = more helping"
    ~header:[ "array"; "ops"; "success"; "helps/op"; "rdcss-helps/op" ]
    rows

(* ------------------------------------------------------------------ *)
(* Index workloads.                                                    *)

type sl_variant = Sl_cas | Sl_volatile | Sl_persistent

let sl_variant_name = function
  | Sl_cas -> "cas-singly"
  | Sl_volatile -> "mwcas-vol"
  | Sl_persistent -> "pmwcas"

(* Preload even keys in [0, 2*keys); reads/updates hit the whole range
   (half miss), inserts/deletes churn odd keys. *)
let preload_keys keys = 2 * keys

let index_op (type h) ~insert ~delete ~update ~find ~scan ~(h : h) ~mix ~dist
    ~rng ~keyspace =
  let k = Dist.next dist rng in
  match Mix.next mix rng with
  | Mix.Read -> ignore (find h k)
  | Mix.Update -> ignore (update h k (k + 1))
  | Mix.Insert -> ignore (insert h ((2 * Random.State.int rng keyspace) + 1))
  | Mix.Delete -> ignore (delete h ((2 * Random.State.int rng keyspace) + 1))
  | Mix.Scan -> ignore (scan h k (k + (2 * mix.Mix.scan_len)))

let index_heap_words s = max (1 lsl 20) (64 * s.index_keys)

(* [zipf] skews the key distribution (theta 0.9, scrambled) so reads
   keep landing on recently-dirtied words — the flush-on-read hot case
   b5 measures. The returned stats are the timed run only (preload
   excluded), so flushes/op ratios compare protocols, not setup cost. *)
let skiplist_bench ?label ?(mix_name = "") ?flush_delay ?flush_mode
    ?(zipf = false) s ~mix ~threads variant =
  let persistent = variant = Sl_persistent in
  let env =
    Bench_env.make ~persistent ?flush_delay ?flush_mode ~max_threads:threads
      ~heap_words:(index_heap_words s) ~map_words:8
      ~data_words:8 ()
  in
  let keyspace = preload_keys s.index_keys in
  let dist =
    Dist.create
      (if zipf then Dist.Zipfian { n = keyspace; theta = 0.9; scrambled = true }
       else Dist.Uniform keyspace)
  in
  let st0 = ref (Nvram.Stats.snapshot (Mem.stats env.mem)) in
  let r =
    match variant with
    | Sl_cas ->
        let t = Cas.create env.mem ~palloc:env.palloc in
      let h0 = Cas.register ~seed:1 t in
      for i = 0 to s.index_keys - 1 do
        ignore (Cas.insert h0 ~key:(2 * i) ~value:i)
      done;
      Cas.unregister h0;
      st0 := Nvram.Stats.snapshot (Mem.stats env.mem);
      Runner.run_timed ~threads ~seconds:s.seconds ~prepare:(fun tid ->
          let h = Cas.register ~seed:(100 + tid) t in
          let rng = Random.State.make [| 31 * (tid + 1) |] in
          fun () ->
            index_op ~h ~mix ~dist ~rng ~keyspace
              ~insert:(fun h k -> Cas.insert h ~key:k ~value:k)
              ~delete:(fun h k -> Cas.delete h ~key:k)
              ~update:(fun h k v -> Cas.update h ~key:k ~value:v)
              ~find:(fun h k -> Cas.find h ~key:k)
              ~scan:(fun h lo hi ->
                Cas.fold_range h ~lo ~hi ~init:0 ~f:(fun a ~key:_ ~value:_ ->
                    a + 1)))
  | Sl_volatile | Sl_persistent ->
      let t =
        Pm.create ~pool:env.pool ~palloc:env.palloc ~anchor:env.sl_anchor ()
      in
      let h0 = Pm.register ~seed:1 t in
      for i = 0 to s.index_keys - 1 do
        ignore (Pm.insert h0 ~key:(2 * i) ~value:i)
      done;
      Pm.unregister h0;
      st0 := Nvram.Stats.snapshot (Mem.stats env.mem);
      Runner.run_timed ~threads ~seconds:s.seconds ~prepare:(fun tid ->
          let h = Pm.register ~seed:(100 + tid) t in
          let rng = Random.State.make [| 31 * (tid + 1) |] in
          fun () ->
            index_op ~h ~mix ~dist ~rng ~keyspace
              ~insert:(fun h k -> Pm.insert h ~key:k ~value:k)
              ~delete:(fun h k -> Pm.delete h ~key:k)
              ~update:(fun h k v -> Pm.update h ~key:k ~value:v)
              ~find:(fun h k -> Pm.find h ~key:k)
              ~scan:(fun h lo hi ->
                Pm.fold_range h ~lo ~hi ~init:0 ~f:(fun a ~key:_ ~value:_ ->
                    a + 1)))
  in
  Option.iter
    (fun label ->
      Report.add_row ~experiment:label
        ~params:
          [
            ("variant", Report.V.String (sl_variant_name variant));
            ("mix", Report.V.String mix_name);
            ("threads", Report.V.Int threads);
          ]
        ~result:r
        ~metrics:(Metrics.snapshot (Pool.metrics env.pool))
        ~stats:(Nvram.Stats.snapshot (Mem.stats env.mem))
        ())
    label;
  (r, Nvram.Stats.diff (Nvram.Stats.snapshot (Mem.stats env.mem)) !st0)

(* E4: the skip-list comparison — the paper reports 1-3% PMwCAS overhead
   vs the volatile MwCAS implementation under realistic workloads. *)
let e4 s =
  section "E4  Doubly-linked skip list under realistic workloads";
  let mixes =
    [ ("90/10", Mix.read_heavy); ("50/50", Mix.balanced) ]
  in
  let rows = ref [] in
  List.iter
    (fun (mname, mix) ->
      List.iter
        (fun threads ->
          let cas, _ = skiplist_bench ~label:"e4" ~mix_name:mname s ~mix ~threads Sl_cas in
          let vol, _ = skiplist_bench ~label:"e4" ~mix_name:mname s ~mix ~threads Sl_volatile in
          let per, _ = skiplist_bench ~label:"e4" ~mix_name:mname s ~mix ~threads Sl_persistent in
          rows :=
            [
              mname;
              string_of_int threads;
              Table.kops cas.throughput;
              Table.kops vol.throughput;
              Table.kops per.throughput;
              Table.ratio per.throughput vol.throughput;
            ]
            :: !rows)
        s.threads)
    mixes;
  Table.print
    ~title:
      "Kops/s; overhead = persistent vs volatile doubly-linked (paper: \
       1-3%); cas-singly is the forward-only CAS baseline"
    ~header:[ "mix"; "threads"; "cas-singly"; "mwcas-vol"; "pmwcas"; "overhead" ]
    (List.rev !rows)

let bwtree_bench ?label ?(mix_name = "") ?(zipf = false) s ~mix ~threads
    ~persistent =
  let env =
    Bench_env.make ~persistent ~max_threads:threads
      ~heap_words:(index_heap_words s) ~map_words:(1 lsl 14) ~data_words:8 ()
  in
  let keyspace = preload_keys s.index_keys in
  let dist =
    Dist.create
      (if zipf then Dist.Zipfian { n = keyspace; theta = 0.9; scrambled = true }
       else Dist.Uniform keyspace)
  in
  let t =
    Tree.create ~pool:env.pool ~palloc:env.palloc ~anchor:env.bt_anchor
      ~map_base:env.map_base ~map_words:env.map_words ()
  in
  let h0 = Tree.register t in
  for i = 0 to s.index_keys - 1 do
    ignore (Tree.put h0 ~key:(2 * i) ~value:i)
  done;
  Tree.unregister h0;
  let st0 = Nvram.Stats.snapshot (Mem.stats env.mem) in
  let r =
    Runner.run_timed ~threads ~seconds:s.seconds ~prepare:(fun tid ->
        let h = Tree.register t in
        let rng = Random.State.make [| 17 * (tid + 1) |] in
        fun () ->
          index_op ~h ~mix ~dist ~rng ~keyspace
            ~insert:(fun h k -> Tree.insert h ~key:k ~value:k)
            ~delete:(fun h k -> Tree.remove h ~key:k)
            ~update:(fun h k v -> ignore (Tree.put h ~key:k ~value:v))
            ~find:(fun h k -> Tree.get h ~key:k)
            ~scan:(fun h lo hi ->
              Tree.fold_range h ~lo ~hi ~init:0 ~f:(fun a ~key:_ ~value:_ ->
                  a + 1)))
  in
  Option.iter
    (fun label ->
      Report.add_row ~experiment:label
        ~params:
          [
            ("persistent", Report.V.Bool persistent);
            ("mix", Report.V.String mix_name);
            ("threads", Report.V.Int threads);
          ]
        ~result:r
        ~metrics:(Metrics.snapshot (Pool.metrics env.pool))
        ~stats:(Nvram.Stats.snapshot (Mem.stats env.mem))
        ())
    label;
  (r, Nvram.Stats.diff (Nvram.Stats.snapshot (Mem.stats env.mem)) st0)

(* E5: the Bw-tree comparison — paper reports 4-8% overhead. *)
let e5 s =
  section "E5  Bw-tree under realistic workloads";
  let mixes = [ ("90/10", Mix.read_heavy); ("50/50", Mix.balanced) ] in
  let rows = ref [] in
  List.iter
    (fun (mname, mix) ->
      List.iter
        (fun threads ->
          let vol, _ = bwtree_bench ~label:"e5" ~mix_name:mname s ~mix ~threads ~persistent:false in
          let per, _ = bwtree_bench ~label:"e5" ~mix_name:mname s ~mix ~threads ~persistent:true in
          rows :=
            [
              mname;
              string_of_int threads;
              Table.kops vol.throughput;
              Table.kops per.throughput;
              Table.ratio per.throughput vol.throughput;
            ]
            :: !rows)
        s.threads)
    mixes;
  Table.print
    ~title:"Kops/s; overhead = persistent vs volatile Bw-tree (paper: 4-8%)"
    ~header:[ "mix"; "threads"; "volatile"; "pmwcas"; "overhead" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E6: HTM-based MwCAS vs software MwCAS robustness.                   *)

let htm_thunk env htm_mw ~nwords ~range tid =
  ignore env;
  let rng = Random.State.make [| 104729 * (tid + 1) |] in
  let idx = Array.make nwords 0 in
  fun () ->
    let rec pick i =
      if i = nwords then ()
      else begin
        let k = Random.State.int rng range in
        if Array.exists (fun x -> x = k) (Array.sub idx 0 i) then pick i
        else begin
          idx.(i) <- k;
          pick (i + 1)
        end
      end
    in
    pick 0;
    let words =
      Array.to_list idx
      |> List.map (fun k ->
             let a = (Bench_env.(env.data)) + k in
             let v = Htm.Mwcas.read htm_mw a in
             (a, v, v + 1))
    in
    ignore (Htm.Mwcas.execute htm_mw ~rng words)

let e6 s =
  section "E6  HTM-based MwCAS vs software MwCAS (4 threads, 4-word ops)";
  let threads = min 4 (List.fold_left max 1 s.threads) in
  let rows = ref [] in
  List.iter
    (fun range ->
      (* Software volatile MwCAS reference. *)
      let sw, _, _ =
        run_mwcas_point ~persistent:false ~label:"e6.sw" ~threads ~range
          ~nwords:4 ~seconds:s.seconds ()
      in
      List.iter
        (fun abort_prob ->
          let env = mwcas_env ~persistent:false ~threads ~range () in
          let htm = Htm.Txn.create ~abort_prob env.mem in
          let mw = Htm.Mwcas.create htm in
          let r =
            Runner.run_timed ~threads ~seconds:s.seconds ~prepare:(fun tid ->
                htm_thunk env mw ~nwords:4 ~range tid)
          in
          let st = Htm.Mwcas.stats mw in
          let aborts =
            st.htm.conflicts + st.htm.capacity + st.htm.spurious
          in
          rows :=
            [
              string_of_int range;
              Printf.sprintf "%.2f" abort_prob;
              Table.kops sw.throughput;
              Table.kops r.throughput;
              Table.ratio r.throughput sw.throughput;
              string_of_int aborts;
              string_of_int st.fallbacks;
            ]
            :: !rows)
        [ 0.0; 0.01; 0.1 ])
    (List.filteri (fun i _ -> i < 2) s.mwcas_ranges);
  Table.print
    ~title:
      "software MwCAS degrades gracefully; HTM falls off a cliff as aborts \
       drive it onto the global-lock fallback"
    ~header:
      [ "array"; "p(abort)"; "sw Kops"; "htm Kops"; "delta"; "aborts"; "fallbacks" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E7: code-complexity table (Section 6 claims).                       *)

let count_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let loc = ref 0 and decisions = ref 0 and in_comment = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let opens =
           let c = ref 0 in
           String.iteri
             (fun i ch ->
               if ch = '(' && i + 1 < String.length line && line.[i + 1] = '*'
               then incr c)
             line;
           !c
         and closes =
           let c = ref 0 in
           String.iteri
             (fun i ch ->
               if ch = '*' && i + 1 < String.length line && line.[i + 1] = ')'
               then incr c)
             line;
           !c
         in
         let was_comment = !in_comment > 0 in
         in_comment := max 0 (!in_comment + opens - closes);
         if (not was_comment) && line <> "" && opens = 0 then begin
           incr loc;
           (* Approximate cyclomatic complexity: decision keywords plus
              pattern-match arms. *)
           List.iter
             (fun kw ->
               let re = Str.regexp ("\\b" ^ kw ^ "\\b") in
               let pos = ref 0 in
               (try
                  while true do
                    pos := 1 + Str.search_forward re line !pos;
                    incr decisions
                  done
                with Not_found -> ()))
             [ "if"; "match"; "when"; "while"; "function" ];
           String.iteri
             (fun i ch ->
               if
                 ch = '|'
                 && (i = 0 || line.[i - 1] = ' ')
                 && i + 1 < String.length line
                 && line.[i + 1] = ' '
               then incr decisions)
             line
         end
       done
     with End_of_file -> ());
    close_in ic;
    Some (!loc, !decisions)
  end

let e7 _s =
  section "E7  Code complexity: PMwCAS index vs CAS-only index (Section 6)";
  let files =
    [
      ("skiplist (PMwCAS, doubly-linked + reverse scans)", "lib/skiplist/pm.ml");
      ("skiplist (CAS baseline, singly-linked, forward-only)", "lib/skiplist/cas_baseline.ml");
      ("bwtree SMOs+ops (PMwCAS, atomic splits/merges)", "lib/bwtree/tree.ml");
    ]
  in
  let rows =
    List.filter_map
      (fun (label, path) ->
        match count_file path with
        | Some (loc, dec) ->
            Some [ label; string_of_int loc; string_of_int dec ]
        | None ->
            Printf.printf "  (source %s not found; run from the repo root)\n"
              path;
            None)
      files
  in
  Table.print
    ~title:
      "lines of code and decision points. Note the doubly-linked PMwCAS \
       list is barely larger than the singly-linked CAS baseline while \
       offering reverse scans and persistence; the paper reports the CAS \
       doubly-linked equivalent needs ~50% more code than PMwCAS"
    ~header:[ "implementation"; "LoC"; "decision points" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8: recovery time vs in-flight descriptors.                         *)

let e8 s =
  section "E8  Recovery time vs in-flight PMwCAS operations (Section 4.4)";
  let rows =
    List.map
      (fun inflight ->
        let descs_per_thread = max 32 ((inflight + 7) / 8 * 2) in
        let env =
          Bench_env.make ~max_threads:8 ~descs_per_thread
            ~heap_words:(1 lsl 16) ~map_words:8
            ~data_words:(4 * max 64 inflight)
            ()
        in
        Bench_env.init_data env 0;
        let h = Pool.register env.pool in
        (* Leave [inflight] operations sealed mid-flight (Undecided,
           descriptor persisted — exactly the crash window). *)
        for i = 0 to inflight - 1 do
          let d = Pool.alloc_desc h in
          for w = 0 to 3 do
            Pool.add_word d
              ~addr:(env.data + (4 * i) + w)
              ~expected:0 ~desired:(i + 1)
          done;
          Pool.seal d
        done;
        let img = Mem.crash_image env.mem in
        let t0 = Unix.gettimeofday () in
        let palloc, _ =
          Palloc.recover img ~base:env.heap_base ~words:env.heap_words
            ~max_threads:8
        in
        let _pool, stats = Pmwcas.Recovery.run ~palloc img ~base:0 in
        let dt = Unix.gettimeofday () -. t0 in
        Report.add_row ~experiment:"e8"
          ~params:
            [
              ("inflight", Report.V.Int inflight);
              ("scanned", Report.V.Int stats.scanned);
              ("rolled_back", Report.V.Int stats.rolled_back);
              ("recovery_ms", Report.V.Float (dt *. 1000.));
            ]
          ();
        [
          string_of_int inflight;
          string_of_int stats.scanned;
          string_of_int stats.rolled_back;
          Printf.sprintf "%.3f" (dt *. 1000.);
        ])
      s.recovery_inflight
  in
  Table.print
    ~title:
      "single pool scan; cost scales with descriptors, not data size — \
       near-instant recovery"
    ~header:[ "in-flight"; "slots scanned"; "rolled back"; "ms" ]
    rows

(* E9: descriptor pool space (Appendix B). *)
let e9 _s =
  section "E9  Descriptor pool space (Appendix B)";
  let rows =
    List.concat_map
      (fun threads ->
        List.map
          (fun max_words ->
            let words =
              Pool.region_words ~max_words ~descs_per_thread:32
                ~max_threads:threads ()
            in
            [
              string_of_int threads;
              string_of_int max_words;
              string_of_int (words * 8 / 1024);
            ])
          [ 4; 8; 16 ])
      [ 8; 16; 32; 64; 96 ]
  in
  Table.print
    ~title:"pool size for 32 descriptors/thread (KiB)"
    ~header:[ "threads"; "max words"; "KiB" ]
    rows

(* E10: the dirty-bit optimization vs naive flush-on-read (Section 3). *)
let e10 s =
  section "E10  Dirty-bit protocol vs flush-on-read (Section 3)";
  let range = 4096 in
  let threads = min 4 (List.fold_left max 1 s.threads) in
  let run_mode naive =
    let env =
      Bench_env.make ~max_threads:threads ~flush_delay:60
        ~heap_words:(1 lsl 12) ~map_words:8 ~data_words:range ()
    in
    Bench_env.init_data env 0;
    let r =
      Runner.run_timed ~threads ~seconds:s.seconds ~prepare:(fun tid ->
          let rng = Random.State.make [| 13 * (tid + 1) |] in
          let h = Pool.register env.pool in
          fun () ->
            let k = env.data + Random.State.int rng range in
            if Random.State.int rng 10 = 0 then begin
              (* occasional writer keeps some words dirty *)
              let d = Pool.alloc_desc h in
              Pool.with_epoch h (fun () ->
                  let v = Op.read env.pool k in
                  Pool.add_word d ~addr:k ~expected:v ~desired:(v + 1);
                  ignore (Op.execute d))
            end
            else if naive then begin
              (* flush-on-read: every load pays a write-back *)
              Mem.clwb env.mem k;
              ignore (Mem.read env.mem k)
            end
            else Pool.with_epoch h (fun () -> ignore (Op.read env.pool k)))
    in
    let flushes = Bench_env.flush_count env in
    Report.add_row
      ~experiment:(if naive then "e10.flush_on_read" else "e10.dirty_bit")
      ~result:r
      ~metrics:(Metrics.snapshot (Pool.metrics env.pool))
      ~stats:(Nvram.Stats.snapshot (Mem.stats env.mem))
      ();
    (r, float_of_int flushes /. float_of_int (max 1 r.ops))
  in
  let naive, naive_fpo = run_mode true in
  let dirty, dirty_fpo = run_mode false in
  Table.print
    ~title:"90% reads / 10% 1-word PMwCAS; flush latency modelled"
    ~header:[ "protocol"; "Kops/s"; "flushes/op" ]
    [
      [ "flush-on-read"; Table.kops naive.throughput; Printf.sprintf "%.2f" naive_fpo ];
      [ "dirty-bit"; Table.kops dirty.throughput; Printf.sprintf "%.2f" dirty_fpo ];
    ]

(* ------------------------------------------------------------------ *)
(* Ablations of design choices (DESIGN.md).                            *)

(* A1: descriptor pool sizing. The pool is the only bounded resource of
   the whole design; too few descriptors per thread and allocation stalls
   on epoch-deferred recycling. *)
let a1 s =
  section "A1  Ablation: descriptors per thread (4 threads, 4-word ops)";
  let threads = min 4 (List.fold_left max 1 s.threads) in
  let range = 4096 in
  let rows =
    List.map
      (fun descs_per_thread ->
        let env =
          Bench_env.make ~max_threads:threads ~descs_per_thread
            ~heap_words:(1 lsl 12) ~map_words:8 ~data_words:range ()
        in
        Bench_env.init_data env 0;
        let r =
          Runner.run_timed ~threads ~seconds:s.seconds ~prepare:(fun tid ->
              mwcas_thunk env ~nwords:4 ~range tid)
        in
        Report.add_row ~experiment:"a1"
          ~params:[ ("descs_per_thread", Report.V.Int descs_per_thread) ]
          ~result:r
          ~metrics:(Metrics.snapshot (Pool.metrics env.pool))
          ~stats:(Nvram.Stats.snapshot (Mem.stats env.mem))
          ();
        [ string_of_int descs_per_thread; Table.kops r.throughput ])
      [ 2; 4; 8; 32; 128 ]
  in
  Table.print
    ~title:
      "tiny partitions force allocation to wait on epoch recycling; the        paper's 'small multiple of the thread count' is enough"
    ~header:[ "descs/thread"; "Kops/s" ]
    rows

(* A2: Bw-tree consolidation threshold — the paper's delta chains trade
   write cost against read amplification. *)
let a2 s =
  section "A2  Ablation: Bw-tree consolidation threshold (50/50 mix)";
  let threads = min 4 (List.fold_left max 1 s.threads) in
  let rows =
    List.map
      (fun consolidate_len ->
        (* +1 handle slot: the post-run stats reader registers while the
           workers' handles are still claimed. *)
        let env =
          Bench_env.make ~max_threads:(threads + 1)
            ~heap_words:(index_heap_words s) ~map_words:(1 lsl 14)
            ~data_words:8 ()
        in
        let keyspace = preload_keys s.index_keys in
        let dist = Dist.create (Dist.Uniform keyspace) in
        let config = { Tree.default_config with consolidate_len } in
        let t =
          Tree.create ~config ~pool:env.pool ~palloc:env.palloc
            ~anchor:env.bt_anchor ~map_base:env.map_base
            ~map_words:env.map_words ()
        in
        let h0 = Tree.register t in
        for i = 0 to s.index_keys - 1 do
          ignore (Tree.put h0 ~key:(2 * i) ~value:i)
        done;
        Tree.unregister h0;
        let mix = Mix.balanced in
        let r =
          Runner.run_timed ~threads ~seconds:s.seconds ~prepare:(fun tid ->
              let h = Tree.register t in
              let rng = Random.State.make [| 23 * (tid + 1) |] in
              fun () ->
                index_op ~h ~mix ~dist ~rng ~keyspace
                  ~insert:(fun h k -> Tree.insert h ~key:k ~value:k)
                  ~delete:(fun h k -> Tree.remove h ~key:k)
                  ~update:(fun h k v -> ignore (Tree.put h ~key:k ~value:v))
                  ~find:(fun h k -> Tree.get h ~key:k)
                  ~scan:(fun h lo hi ->
                    Tree.fold_range h ~lo ~hi ~init:0
                      ~f:(fun a ~key:_ ~value:_ -> a + 1)))
        in
        let h = Tree.register t in
        let st = Tree.stats h in
        Report.add_row ~experiment:"a2"
          ~params:
            [
              ("consolidate_len", Report.V.Int consolidate_len);
              ("chain_records", Report.V.Int st.chain_records);
            ]
          ~result:r
          ~metrics:(Metrics.snapshot (Pool.metrics env.pool))
          ~stats:(Nvram.Stats.snapshot (Mem.stats env.mem))
          ();
        [
          string_of_int consolidate_len;
          Table.kops r.throughput;
          Printf.sprintf "%.2f"
            (float_of_int st.chain_records
            /. float_of_int (max 1 (st.leaf_pages + st.inner_pages)));
        ])
      [ 2; 4; 8; 16; 32 ]
  in
  Table.print
    ~title:
      "longer chains = cheaper writes, costlier reads; the sweet spot        sits near the paper's default"
    ~header:[ "chain limit"; "Kops/s"; "avg chain len" ]
    rows

(* B1: memory-backend comparison. The same volatile 4-word MwCAS
   workload on the simulated cache-line device (persistence bookkeeping
   priced in, flushes elided) vs the lean DRAM backend (bare atomics).
   The gap is the simulator tax a volatile run no longer pays. *)
let b1 s =
  section "B1  Volatile MwCAS: simulated NVRAM device vs lean DRAM backend";
  let rows = ref [] in
  List.iter
    (fun range ->
      List.iter
        (fun threads ->
          let sim, _, _ =
            run_mwcas_point ~persistent:false ~backend:`Sim ~label:"b1.sim"
              ~threads ~range ~nwords:4 ~seconds:s.seconds ()
          in
          let dram, _, _ =
            run_mwcas_point ~persistent:false ~backend:`Dram ~label:"b1.dram"
              ~threads ~range ~nwords:4 ~seconds:s.seconds ()
          in
          rows :=
            [
              string_of_int range;
              string_of_int threads;
              Table.kops sim.throughput;
              Table.kops dram.throughput;
              Table.ratio dram.throughput sim.throughput;
            ]
            :: !rows)
        s.threads)
    s.mwcas_ranges;
  Table.print
    ~title:"volatile 4-word MwCAS throughput (Kops/s); speedup = dram/sim"
    ~header:[ "array"; "threads"; "sim"; "dram"; "speedup" ]
    (List.rev !rows)

(* B2: the asynchronous write-back pipeline (clwb marks a line pending,
   the fence drains distinct lines once) against the synchronous model
   (every clwb stalls for its full write-back). Both sides pay the same
   modelled NVM write-back latency (flush_delay 240 — 4x E1's delayed
   variant, so the write-back dominates the pipeline's bookkeeping);
   only the device's flush semantics change, so the throughput gap and
   the flushes-per-op drop are pure pipeline wins: coalesced lines are
   charged once per distinct line per fence, and clean lines not at
   all.  The MwCAS point uses a small 64-word array so a descriptor's
   target words share cache lines — the case phase-batched flushing is
   built for. *)
let b2 s =
  section
    "B2  Flush pipeline: async clwb + drain fence vs synchronous clwb";
  let fpo (st : Nvram.Stats.snapshot) (r : Harness.Runner.result) =
    float_of_int st.flushes /. float_of_int (max 1 r.ops)
  in
  let mwcas_point mode threads =
    let r, _, env =
      run_mwcas_point ~persistent:true ~flush_delay:240 ~flush_mode:mode
        ~label:("b2.mwcas." ^ Nvram.Config.flush_mode_name mode)
        ~threads ~range:64 ~nwords:4 ~seconds:s.seconds ()
    in
    (r, Nvram.Stats.snapshot (Mem.stats env.mem))
  in
  let sl_point mode threads =
    skiplist_bench
      ~label:("b2.skiplist." ^ Nvram.Config.flush_mode_name mode)
      ~mix_name:"50/50" ~flush_delay:240 ~flush_mode:mode s ~mix:Mix.balanced
      ~threads Sl_persistent
  in
  let rows = ref [] in
  List.iter
    (fun
      ( workload,
        (point :
          Nvram.Config.flush_mode ->
          int ->
          Runner.result * Nvram.Stats.snapshot) )
    ->
      List.iter
        (fun threads ->
          let sr, sst = point Nvram.Config.Sync threads in
          let ar, ast = point Nvram.Config.Async threads in
          rows :=
            [
              workload;
              string_of_int threads;
              Table.kops sr.throughput;
              Table.kops ar.throughput;
              Table.ratio ar.throughput sr.throughput;
              Printf.sprintf "%.1f" (fpo sst sr);
              Printf.sprintf "%.1f" (fpo ast ar);
              Printf.sprintf "%.2f"
                (float_of_int ast.elided_flushes
                /. float_of_int (max 1 (ast.flushes + ast.elided_flushes)));
            ]
            :: !rows)
        s.threads)
    [ ("mwcas-4w", mwcas_point); ("skiplist", sl_point) ];
  Table.print
    ~title:
      "persistent workloads, sync vs async flushing (Kops/s); speedup = \
       async/sync; fl/op = device flushes per operation; elide = fraction \
       of async clwbs absorbed by coalescing"
    ~header:
      [
        "workload"; "threads"; "sync"; "async"; "speedup"; "fl/op sync";
        "fl/op async"; "elide";
      ]
    (List.rev !rows)

(* B3: descriptor-pool organization head-to-head. The per-domain pool
   (owner-local free list + atomic inbox, epoch-limbo recycling) against
   the shared claim-scan baseline (BzTree-style status scan from a
   roving cursor) on the persistent 4-word MwCAS microbench. The scan
   baseline pays O(scanned statuses) per allocation — and the scan
   lengthens as retired-but-not-yet-reclaimed slots park in limbo —
   while the per-domain pool pops its own free list with no atomics in
   the common case. scans/op counts statuses inspected per operation on
   the shared side; local% is the fraction of per-domain allocations
   served owner-locally (no inbox CAS, no steal).

   On a single-core host the throughput delta between the two
   organizations is smaller than the run-to-run scheduler jitter at
   quick-scale durations, and machine speed drifts over the run. Each
   row therefore runs shared/per-domain back-to-back as a pair (drift
   hits both sides equally) and reports the median-speedup pair of
   three — the fl/op, scans/op and local% columns are protocol counts
   and stable regardless. *)
let b3 s =
  section "B3  Descriptor pool: per-domain inbox pools vs shared claim scan";
  let fpo (st : Nvram.Stats.snapshot) (r : Runner.result) =
    float_of_int st.flushes /. float_of_int (max 1 r.ops)
  in
  let seconds = Float.max 0.75 s.seconds in
  let point sharing tag threads =
    let r, m, env =
      run_mwcas_point ~persistent:true ~sharing ~label:("b3." ^ tag) ~threads
        ~range:64 ~nwords:4 ~seconds ()
    in
    (r, m, Nvram.Stats.snapshot (Mem.stats env.mem))
  in
  let paired threads =
    let pairs =
      List.init 3 (fun _ ->
          ( point `Shared "shared" threads,
            point `Per_domain "perdomain" threads ))
    in
    let ratio (((sr : Runner.result), _, _), ((pr : Runner.result), _, _)) =
      pr.throughput /. sr.throughput
    in
    let sorted = List.sort (fun a b -> compare (ratio a) (ratio b)) pairs in
    List.nth sorted 1
  in
  let domains = [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun threads ->
        let (sr, sm, sst), (pr, pm, pst) = paired threads in
        let local_frac =
          float_of_int pm.desc_local
          /. float_of_int (max 1 (pm.desc_local + pm.desc_remote))
        in
        let scans_per_op =
          float_of_int sm.desc_scans /. float_of_int (max 1 sr.ops)
        in
        [
          string_of_int threads;
          Table.kops sr.throughput;
          Table.kops pr.throughput;
          Table.ratio pr.throughput sr.throughput;
          Printf.sprintf "%.1f" (fpo sst sr);
          Printf.sprintf "%.1f" (fpo pst pr);
          Printf.sprintf "%.1f" scans_per_op;
          Printf.sprintf "%.0f%%" (100. *. local_frac);
          string_of_int (sm.backoffs + pm.backoffs);
        ])
      domains
  in
  Table.print
    ~title:
      "persistent 4-word MwCAS, shared claim-scan pool vs per-domain pools \
       (Kops/s); speedup = perdomain/shared; fl/op = device flushes per \
       operation; scans/op = statuses inspected per op (shared); local% = \
       owner-local allocations (perdomain)"
    ~header:
      [
        "domains"; "shared"; "perdomain"; "speedup"; "fl/op sh"; "fl/op pd";
        "scans/op"; "local%"; "backoffs";
      ]
    rows

(* B4: the sharded store's per-shard group commit against per-op
   persistence, under open-loop (arrival-rate driven) load. Each client
   domain issues Zipf-keyed requests on a Poisson arrival process at a
   fixed offered rate; a recorded latency is completion minus scheduled
   arrival, so queueing behind the committer inflates the tail instead
   of silently throttling the load (no coordinated omission). The group
   side folds each drained batch's updates into one multi-word PMwCAS
   and rides a shared persist/fence sequence, so fences/op falls as
   client count (and with it batch size) grows; the per-op side pays
   the full persistence trio for every mutation. *)
let store_point ?label ~commit ~clients ~seconds ~keys ~next_op () =
  let module Ol = Workload.Open_loop in
  let latency = Telemetry.histogram "store.latency_ns" in
  let config =
    {
      Store.default_config with
      shards = 2;
      commit;
      max_clients = clients + 2;
      heap_words = 1 lsl 17;
      batch_limit = 16;
    }
  in
  let mem =
    Nvram.Mem.create
      (Nvram.Config.make ?flush_mode:!Bench_env.default_flush_mode
         ~words:(Store.words_needed config)
         ())
  in
  let st = Store.create ~config mem ~base:0 in
  let boot = Store.open_session st in
  for k = 0 to keys - 1 do
    ignore (Store.insert boot ~key:k ~value:k)
  done;
  Store.close_session boot;
  Mem.persist_all mem;
  Store.reset_counters ();
  Telemetry.Histogram.reset latency;
  let st0 = Nvram.Stats.snapshot (Mem.stats mem) in
  let rate = 25_000. in
  let ops = max 1_000 (int_of_float (rate *. seconds)) in
  let results =
    List.init clients (fun tid ->
        Domain.spawn (fun () ->
            let sess = Store.open_session st in
            let d =
              Dist.create (Dist.Zipfian { n = keys; theta = 0.9; scrambled = true })
            in
            let rng = Random.State.make [| 0xb4; tid; clients |] in
            let r =
              Ol.run ~seed:(tid + 1) ~rate ~ops ~latencies:latency (fun i ->
                  let k = Dist.next d rng in
                  let v = (tid * ops) + i + keys in
                  match next_op rng with
                  | `R -> ignore (Store.find sess ~key:k)
                  | `U -> ignore (Store.update sess ~key:k ~value:v)
                  | `I -> ignore (Store.insert sess ~key:k ~value:v)
                  | `D -> ignore (Store.delete sess ~key:k))
            in
            Store.close_session sess;
            r))
    |> List.map Domain.join
  in
  let st1 = Nvram.Stats.snapshot (Mem.stats mem) in
  let c = Store.counters () in
  let total =
    List.fold_left (fun a (r : Ol.result) -> a + r.completed) 0 results
  in
  let elapsed =
    List.fold_left (fun a (r : Ol.result) -> max a r.elapsed_ns) 0 results
  in
  let throughput = float_of_int total *. 1e9 /. float_of_int (max 1 elapsed) in
  let fences_per_op =
    float_of_int (st1.fences - st0.fences) /. float_of_int (max 1 total)
  in
  let snap = Telemetry.Histogram.snapshot latency in
  Option.iter
    (fun label ->
      let p q = Telemetry.Histogram.percentile snap q in
      Report.add_row ~experiment:label
        ~params:
          [
            ( "commit",
              Report.V.String
                (match commit with Store.Group -> "group" | Store.Per_op -> "perop") );
            ("clients", Report.V.Int clients);
            ("keys", Report.V.Int keys);
            ("offered_rate_per_client", Report.V.Float rate);
            ("ops", Report.V.Int total);
            ("throughput", Report.V.Float throughput);
            ("fences_per_op", Report.V.Float fences_per_op);
            ("p50_ns", Report.V.Int (p 0.50));
            ("p99_ns", Report.V.Int (p 0.99));
            ("p999_ns", Report.V.Int (p 0.999));
            ("commits", Report.V.Int c.Store.commits);
            ("batched_ops", Report.V.Int c.Store.batched_ops);
            ("merged_updates", Report.V.Int c.Store.merged_updates);
          ]
        ~stats:st1 ())
    label;
  (throughput, fences_per_op, snap, c)

let b4 s =
  section "B4  Sharded store: group commit vs per-op persistence (open loop)";
  let keys = min s.index_keys 4096 in
  let mixes =
    [
      ( "read-mostly",
        fun rng -> if Random.State.int rng 100 < 90 then `R else `U );
      ( "write-heavy",
        fun rng ->
          let r = Random.State.int rng 100 in
          if r < 10 then `R
          else if r < 60 then `U
          else if r < 80 then `I
          else `D );
      ("update-only", fun _ -> `U);
    ]
  in
  let thr_rows = ref [] and lat_rows = ref [] in
  let us snap q =
    Printf.sprintf "%.0f"
      (float_of_int (Telemetry.Histogram.percentile snap q) /. 1e3)
  in
  List.iter
    (fun (mix_name, next_op) ->
      List.iter
        (fun clients ->
          let label side = Printf.sprintf "b4.%s.%s" side mix_name in
          let pt, pf, psnap, _ =
            store_point ~label:(label "perop") ~commit:Store.Per_op ~clients
              ~seconds:s.seconds ~keys ~next_op ()
          in
          let gt, gf, gsnap, gc =
            store_point ~label:(label "group") ~commit:Store.Group ~clients
              ~seconds:s.seconds ~keys ~next_op ()
          in
          let batch =
            float_of_int gc.Store.batched_ops
            /. float_of_int (max 1 gc.Store.commits)
          in
          thr_rows :=
            [
              mix_name;
              string_of_int clients;
              Table.kops pt;
              Table.kops gt;
              Printf.sprintf "%.1f" pf;
              Printf.sprintf "%.1f" gf;
              Printf.sprintf "%.2f" batch;
            ]
            :: !thr_rows;
          lat_rows :=
            [
              mix_name;
              string_of_int clients;
              us psnap 0.50;
              us psnap 0.99;
              us psnap 0.999;
              us gsnap 0.50;
              us gsnap 0.99;
              us gsnap 0.999;
            ]
            :: !lat_rows)
        s.threads)
    mixes;
  Table.print
    ~title:
      "open-loop sharded store, per-op persistence vs group commit \
       (Kops/s); f/op = device fences per completed op; batch = mean \
       drained batch size (group)"
    ~header:
      [ "mix"; "clients"; "perop"; "group"; "f/op po"; "f/op grp"; "batch" ]
    (List.rev !thr_rows);
  Table.print
    ~title:
      "open-loop latency in µs, completion minus scheduled arrival \
       (coordinated-omission aware)"
    ~header:
      [
        "mix"; "clients"; "po p50"; "po p99"; "po p999"; "grp p50";
        "grp p99"; "grp p999";
      ]
    (List.rev !lat_rows)

(* B5: destination-only persistence (FliT-style per-word flush
   tracking) on the index workloads. With flit on (the default), index
   traversals use weak journey reads — no flush-on-read write-back +
   fence on dirty words they merely pass over — and the destination
   pass before each PMwCAS consults the per-word flush counters to
   elide write-backs already in flight. Off restores the seed
   behaviour: strong flush-on-read traversals and unconditional
   clwb_range over fresh node bodies. Zipfian keys (theta 0.9) keep
   every traversal landing on recently-dirtied hot words — exactly
   where flush-on-read burns write-backs. Both sides of each row run
   back-to-back on fresh environments; flushes/op and fences/op count
   the timed run only (preload excluded). As in B3, the single-core
   host's scheduler jitter at quick-scale durations exceeds the
   throughput delta, so each row runs its off/on pair three times and
   reports the median-speedup pair — the per-op flush and fence counts
   are protocol-determined and stable across repetitions. *)
let b5 s =
  section
    "B5  Destination-only persistence: flit on vs off (zipf-keyed indexes)";
  let saved = Nvram.Flit.enabled () in
  let fl (st : Nvram.Stats.snapshot) (r : Runner.result) =
    float_of_int st.flushes /. float_of_int (max 1 r.ops)
  and fe (st : Nvram.Stats.snapshot) (r : Runner.result) =
    float_of_int st.fences /. float_of_int (max 1 r.ops)
  in
  let sl_point ~mix_name ~mix ~threads flit =
    Nvram.Flit.set_enabled flit;
    skiplist_bench
      ~label:("b5.skiplist." ^ if flit then "on" else "off")
      ~mix_name ~zipf:true s ~mix ~threads Sl_persistent
  in
  let bt_point ~mix_name ~mix ~threads flit =
    Nvram.Flit.set_enabled flit;
    bwtree_bench
      ~label:("b5.bwtree." ^ if flit then "on" else "off")
      ~mix_name ~zipf:true s ~mix ~threads ~persistent:true
  in
  let rows = ref [] in
  Fun.protect
    ~finally:(fun () -> Nvram.Flit.set_enabled saved)
    (fun () ->
      List.iter
        (fun (structure, point) ->
          List.iter
            (fun (mix_name, mix) ->
              List.iter
                (fun threads ->
                  let pairs =
                    List.init 3 (fun _ ->
                        let off = point ~mix_name ~mix ~threads false in
                        let on = point ~mix_name ~mix ~threads true in
                        (off, on))
                  in
                  let ratio (((offr : Runner.result), _), ((onr : Runner.result), _))
                      =
                    onr.throughput /. offr.throughput
                  in
                  let sorted =
                    List.sort (fun a b -> compare (ratio a) (ratio b)) pairs
                  in
                  let (offr, offst), (onr, onst) = List.nth sorted 1 in
                  let off_fl = fl offst offr and on_fl = fl onst onr in
                  rows :=
                    [
                      structure;
                      mix_name;
                      string_of_int threads;
                      Table.kops offr.throughput;
                      Table.kops onr.throughput;
                      Table.ratio onr.throughput offr.throughput;
                      Printf.sprintf "%.1f" off_fl;
                      Printf.sprintf "%.1f" on_fl;
                      Printf.sprintf "-%.0f%%"
                        (100. *. (1. -. (on_fl /. Float.max 1e-9 off_fl)));
                      Printf.sprintf "%.1f" (fe offst offr);
                      Printf.sprintf "%.1f" (fe onst onr);
                    ]
                    :: !rows)
                s.threads)
            [ ("90/10", Mix.read_heavy); ("50/50", Mix.balanced) ])
        [ ("skiplist", sl_point); ("bwtree", bt_point) ]);
  Table.print
    ~title:
      "persistent zipf-keyed indexes, flit off vs on (Kops/s); speedup = \
       on/off; fl/op = device flushes per op; drop = flush/op reduction; \
       fe/op = device fences per op"
    ~header:
      [
        "index"; "mix"; "threads"; "off"; "on"; "speedup"; "fl/op off";
        "fl/op on"; "drop"; "fe/op off"; "fe/op on";
      ]
    (List.rev !rows)

(* B6: the commit-protocol strategy race — [`Paper]'s dirty-bit
   protocol vs [`NoDirty] (unconditional flushes, no dirty-clear CAS)
   vs [`FewFence] (one relocated commit fence per op) — across domain
   counts and both flush models, on the MwCAS microbenchmark and both
   zipf-keyed persistent indexes. The strategy is baked into the device
   at creation, so each point sets the process default before building
   its environment. *)
let b6 s =
  section
    "B6  Commit-protocol strategies: paper vs nodirty vs fewfence \
     (persistent runs)";
  let saved_strategy = Nvram.Config.default_strategy () in
  let saved_flush = !Bench_env.default_flush_mode in
  let strategies = [ `Paper; `NoDirty; `FewFence ] in
  let per (r : Runner.result) n =
    float_of_int n /. float_of_int (max 1 r.ops)
  in
  let mwcas_point ~flush_name ~threads strat =
    let label =
      Printf.sprintf "b6.mwcas.%s.%s"
        (Nvram.Config.strategy_name strat)
        flush_name
    in
    let r, _, env =
      run_mwcas_point ~persistent:true ~label ~threads ~range:1024 ~nwords:4
        ~seconds:s.seconds ()
    in
    (r, Nvram.Stats.snapshot (Mem.stats env.mem))
  in
  let sl_point ~flush_name ~threads strat =
    skiplist_bench
      ~label:
        (Printf.sprintf "b6.skiplist.%s.%s"
           (Nvram.Config.strategy_name strat)
           flush_name)
      ~mix_name:"50/50" ~zipf:true s ~mix:Mix.balanced ~threads Sl_persistent
  in
  let bt_point ~flush_name ~threads strat =
    bwtree_bench
      ~label:
        (Printf.sprintf "b6.bwtree.%s.%s"
           (Nvram.Config.strategy_name strat)
           flush_name)
      ~mix_name:"50/50" ~zipf:true s ~mix:Mix.balanced ~threads
      ~persistent:true
  in
  let workloads =
    [ ("mwcas", mwcas_point); ("skiplist", sl_point); ("bwtree", bt_point) ]
  in
  let rows = ref [] in
  Fun.protect
    ~finally:(fun () ->
      Nvram.Config.set_default_strategy saved_strategy;
      Bench_env.default_flush_mode := saved_flush)
    (fun () ->
      List.iter
        (fun (flush_name, flush_mode) ->
          Bench_env.default_flush_mode := Some flush_mode;
          List.iter
            (fun threads ->
              List.iter
                (fun (workload, point) ->
                  let results =
                    List.map
                      (fun strat ->
                        Nvram.Config.set_default_strategy strat;
                        Nvram.Strategy.reset_counters ();
                        let r, (st : Nvram.Stats.snapshot) =
                          point ~flush_name ~threads strat
                        in
                        (strat, r, st, Nvram.Strategy.counters ()))
                      strategies
                  in
                  let paper_tp =
                    match results with
                    | (_, (r : Runner.result), _, _) :: _ -> r.throughput
                    | [] -> 1.
                  in
                  List.iter
                    (fun ( strat,
                           (r : Runner.result),
                           (st : Nvram.Stats.snapshot),
                           (c : Nvram.Strategy.counters) ) ->
                      rows :=
                        [
                          workload;
                          flush_name;
                          string_of_int threads;
                          Nvram.Config.strategy_name strat;
                          Table.kops r.throughput;
                          Table.ratio r.throughput paper_tp;
                          Printf.sprintf "%.1f" (per r st.flushes);
                          Printf.sprintf "%.2f" (per r st.fences);
                          Printf.sprintf "%.2f" (per r c.dirty_cas);
                          Printf.sprintf "%.2f" (per r c.commit_batches);
                        ]
                        :: !rows)
                    results)
                workloads)
            s.threads)
        [ ("sync", Nvram.Config.Sync); ("async", Nvram.Config.Async) ]);
  Table.print
    ~title:
      "three protocol strategies head to head (Kops/s); vs paper = \
       throughput ratio against the dirty-bit baseline; fl/op, fe/op = \
       device flushes and fences per timed op; dcas/op = dirty-clear \
       CASes per timed op (index preload included); batch/op = fewfence \
       combined commit batches per op"
    ~header:
      [
        "workload"; "flush"; "domains"; "strategy"; "Kops/s"; "vs paper";
        "fl/op"; "fe/op"; "dcas/op"; "batch/op";
      ]
    (List.rev !rows)

(* Telemetry smoke: one tiny point per instrumented subsystem, so a
   [--metrics] run populates every latency histogram (PMwCAS attempt,
   clwb stall, palloc alloc, skip-list op, Bw-tree op) in a couple of
   seconds. scripts/check.sh validates the resulting file. *)
let smoke s =
  section "SMOKE  one tiny point per instrumented subsystem";
  let s = { s with seconds = min 0.2 s.seconds; index_keys = 1_000 } in
  let mw, _, _ =
    run_mwcas_point ~persistent:true ~label:"smoke.mwcas" ~threads:2
      ~range:256 ~nwords:4 ~seconds:s.seconds ()
  in
  let sl, _ =
    skiplist_bench ~label:"smoke.skiplist" ~mix_name:"50/50" s
      ~mix:Mix.balanced ~threads:2 Sl_persistent
  in
  let bt, _ =
    bwtree_bench ~label:"smoke.bwtree" ~mix_name:"50/50" s ~mix:Mix.balanced
      ~threads:2 ~persistent:true
  in
  let store, _, _, _ =
    store_point ~label:"smoke.store" ~commit:Store.Group ~clients:2
      ~seconds:s.seconds ~keys:256
      ~next_op:(fun rng -> if Random.State.int rng 100 < 50 then `R else `U)
      ()
  in
  Table.print ~title:"quick persistent runs (Kops/s)"
    ~header:[ "subsystem"; "Kops/s" ]
    [
      [ "pmwcas"; Table.kops mw.throughput ];
      [ "skiplist"; Table.kops sl.throughput ];
      [ "bwtree"; Table.kops bt.throughput ];
      [ "store"; Table.kops store ];
    ]

let run_all ~full_scale () =
  let s = if full_scale then full else quick in
  e1 s;
  e2 s;
  e3 s;
  e4 s;
  e5 s;
  e6 s;
  e7 s;
  e8 s;
  e9 s;
  e10 s;
  a1 s;
  a2 s;
  b1 s;
  b2 s;
  b3 s;
  b4 s;
  b5 s;
  b6 s

let by_name name s =
  match name with
  | "e1" -> e1 s
  | "e2" -> e2 s
  | "e3" -> e3 s
  | "e4" -> e4 s
  | "e5" -> e5 s
  | "e6" -> e6 s
  | "e7" -> e7 s
  | "e8" -> e8 s
  | "e9" -> e9 s
  | "e10" -> e10 s
  | "a1" -> a1 s
  | "a2" -> a2 s
  | "b1" | "backends" -> b1 s
  | "b2" | "flush" -> b2 s
  | "b3" | "pool" -> b3 s
  | "b4" | "store" -> b4 s
  | "b5" | "flit" -> b5 s
  | "b6" | "strategy" -> b6 s
  | "smoke" -> smoke s
  | _ -> Printf.printf "unknown experiment %s\n" name
