(* Shared construction of simulated-NVRAM environments for the
   experiments: [pool | allocator heap | index anchors | mapping table |
   raw data array], mirroring the layout the paper assumes (descriptor
   pool at a known location, Section 4.4). *)

module Mem = Nvram.Mem
module Pool = Pmwcas.Pool

type t = {
  mem : Mem.t;
  pool : Pool.t;
  palloc : Palloc.t;
  heap_base : int;
  heap_words : int;
  sl_anchor : int;
  bt_anchor : int;
  map_base : int;
  map_words : int;
  data : int;
  data_words : int;
  max_threads : int;
}

let align8 a = (a + 7) / 8 * 8

(* Backend used when an experiment asks for a volatile environment and
   does not pin one itself. Overridden by [main.exe --backend]. *)
let default_volatile_backend : Mem.backend ref = ref `Dram

(* Flush mode for environments that do not pin one (the b2 experiment
   pins both sides explicitly). Overridden by [main.exe --flush]. *)
let default_flush_mode : Nvram.Config.flush_mode option ref = ref None

let make ?(persistent = true) ?backend ?(flush_delay = 0) ?flush_mode
    ?(max_threads = 8) ?(descs_per_thread = 32) ?(max_words = 8)
    ?(heap_words = 1 lsl 22) ?(map_words = 1 lsl 16)
    ?(data_words = 1 lsl 20) ?sharing ?arenas ?carve_blocks () =
  let pool_words = Pool.region_words ~max_words ~descs_per_thread ~max_threads () in
  let heap_base = align8 pool_words in
  let sl_anchor = align8 (heap_base + heap_words) in
  let bt_anchor = align8 (sl_anchor + Skiplist.Pm.anchor_words) in
  let map_base = align8 (bt_anchor + Bwtree.Tree.anchor_words) in
  let data = align8 (map_base + map_words) in
  let words = data + data_words in
  let backend =
    match backend with
    | Some b -> b
    | None -> if persistent then `Sim else !default_volatile_backend
  in
  if persistent && backend <> `Sim then
    invalid_arg "Bench_env.make: persistent runs need the simulated backend";
  let flush_mode =
    match flush_mode with Some _ -> flush_mode | None -> !default_flush_mode
  in
  let mem =
    Mem.create_backend backend
      (Nvram.Config.make ~flush_delay ?flush_mode ~words ())
  in
  let palloc =
    Palloc.create ~persistent ?arenas ?carve_blocks mem ~base:heap_base
      ~words:heap_words ~max_threads
  in
  let pool =
    Pool.create ~persistent ?sharing ~max_words ~descs_per_thread ~palloc mem
      ~base:0 ~max_threads
  in
  {
    mem;
    pool;
    palloc;
    heap_base;
    heap_words;
    sl_anchor;
    bt_anchor;
    map_base;
    map_words;
    data;
    data_words;
    max_threads;
  }

(* Initialize the raw data array and make it durable. *)
let init_data t value =
  for i = 0 to t.data_words - 1 do
    Mem.write t.mem (t.data + i) value
  done;
  Mem.persist_all t.mem

let flush_count t = (Nvram.Stats.snapshot (Mem.stats t.mem)).flushes
