(* Machine-readable benchmark output (main.exe --metrics FILE).

   Experiments keep printing their human tables; when an output path is
   set they additionally push one JSON row per measured point here, and
   [write] dumps {meta; registry; rows} at the end of the run. The
   registry part is the live [Telemetry.snapshot] — per-phase times, the
   latency histograms and the epoch counters; the rows carry per-point
   throughput plus the PMwCAS metrics snapshot the tables only show in
   ratio form. *)

module V = Telemetry.Value

let out_path : string option ref = ref None
let want () = !out_path <> None
let rows : V.t list ref = ref [] (* newest first *)

let result_to_json (r : Harness.Runner.result) =
  V.Obj
    [
      ("threads", V.Int r.threads);
      ("ops", V.Int r.ops);
      ("seconds", V.Float r.seconds);
      ("throughput", V.Float r.throughput);
    ]

(* The per-op ratios every experiment wants but only some tables print:
   derived here once so each JSON row is self-describing. *)
let metrics_to_json (m : Pmwcas.Metrics.snapshot) =
  let att = max 1 m.attempts in
  let per x = float_of_int x /. float_of_int att in
  match Pmwcas.Metrics.to_json m with
  | V.Obj fields ->
      V.Obj
        (fields
        @ [
            ("failure_rate", V.Float (per m.failed));
            ("helps_per_op", V.Float (per m.desc_helps));
            ("rdcss_helps_per_op", V.Float (per m.rdcss_helps));
          ])
  | other -> other

let stats_to_json ?ops (s : Nvram.Stats.snapshot) =
  match (Nvram.Stats.to_json s, ops) with
  | V.Obj fields, Some ops when ops > 0 ->
      V.Obj
        (fields
        @ [
            ( "flushes_per_op",
              V.Float (float_of_int s.flushes /. float_of_int ops) );
          ])
  | j, _ -> j

let add_row ~experiment ?(params = []) ?result ?metrics ?stats ?series () =
  if want () then begin
    let opt name f v = Option.map (fun x -> (name, f x)) v in
    let fields =
      [ Some ("experiment", V.String experiment) ]
      @ List.map (fun kv -> Some kv) params
      @ [
          opt "result" result_to_json result;
          opt "pmwcas" metrics_to_json metrics;
          opt "nvram"
            (stats_to_json ?ops:(Option.map (fun (r : Harness.Runner.result) -> r.ops) result))
            stats;
          opt "series" Telemetry.Sampler.to_json series;
        ]
    in
    rows := V.Obj (List.filter_map Fun.id fields) :: !rows
  end

let write ~scale ~backend =
  match !out_path with
  | None -> ()
  | Some path ->
      let tm = Unix.gmtime (Unix.gettimeofday ()) in
      let date =
        Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.tm_year + 1900)
          (tm.tm_mon + 1) tm.tm_mday tm.tm_hour tm.tm_min tm.tm_sec
      in
      let doc =
        V.Obj
          [
            ( "meta",
              V.Obj
                [
                  ("date", V.String date);
                  ("scale", V.String scale);
                  ("backend", V.String backend);
                  ("run_id", V.String (Flight.run_id ()));
                ] );
            ("registry", Telemetry.snapshot ());
            ("rows", V.List (List.rev !rows));
          ]
      in
      Telemetry.Export.write_file path (V.to_string ~pretty:true doc ^ "\n");
      Printf.printf "\nwrote metrics to %s (%d rows)\n%!" path
        (List.length !rows)
